package governor

import (
	"testing"
	"testing/quick"

	"nmapsim/internal/cpu"
)

func TestSchedutilHeadroomFormula(t *testing.T) {
	g := &Schedutil{Model: cpu.XeonGold6134}
	// util 0.8 → target 1.25·3.2·0.8 = 3.2 GHz → P0 immediately.
	if p := g.Decide(0, UtilSample{Busy: 0.8}); p != 0 {
		t.Fatalf("util 0.8 → P%d, want P0", p)
	}
}

func TestSchedutilRampsUpInstantly(t *testing.T) {
	g := &Schedutil{Model: cpu.XeonGold6134}
	g.Decide(0, UtilSample{Busy: 0})
	if p := g.Decide(0, UtilSample{Busy: 1.0}); p != 0 {
		t.Fatalf("upward move delayed: P%d", p)
	}
}

func TestSchedutilHoldsBeforeDropping(t *testing.T) {
	g := &Schedutil{Model: cpu.XeonGold6134}
	g.Decide(0, UtilSample{Busy: 1.0}) // P0
	p1 := g.Decide(0, UtilSample{Busy: 0.0})
	if p1 != 0 {
		t.Fatalf("dropped after one low sample: P%d", p1)
	}
	p2 := g.Decide(0, UtilSample{Busy: 0.0})
	if p2 != 15 {
		t.Fatalf("did not drop after the hold expired: P%d", p2)
	}
}

func TestSchedutilPerCoreState(t *testing.T) {
	g := &Schedutil{Model: cpu.XeonGold6134}
	g.Decide(0, UtilSample{Busy: 1.0})
	if p := g.Decide(1, UtilSample{Busy: 0.0}); p != 15 {
		t.Fatalf("core 1 inherited core 0's state: P%d", p)
	}
}

// Property: the chosen frequency always covers the headroom target (or
// is P0 when nothing can).
func TestSchedutilCoversTargetProperty(t *testing.T) {
	m := cpu.XeonGold6134
	f := func(uRaw uint8) bool {
		g := &Schedutil{Model: m}
		u := float64(uRaw) / 255
		p := g.Decide(0, UtilSample{Busy: u})
		target := 1.25 * m.PStates[0].FreqGHz * u
		if target > m.PStates[0].FreqGHz {
			return p == 0
		}
		return m.PStates[p].FreqGHz >= target-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
