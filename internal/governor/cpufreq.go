package governor

import (
	"fmt"

	"nmapsim/internal/cpu"
)

// Performance statically holds every core at P0 (§2.2).
type Performance struct{}

// Name implements CPUGovernor.
func (Performance) Name() string { return "performance" }

// Decide implements CPUGovernor.
func (Performance) Decide(int, UtilSample) int { return 0 }

// Powersave statically holds every core at the slowest state.
type Powersave struct{ Model *cpu.Model }

// Name implements CPUGovernor.
func (Powersave) Name() string { return "powersave" }

// Decide implements CPUGovernor.
func (g Powersave) Decide(int, UtilSample) int { return g.Model.MaxP() }

// Userspace holds every core at a user-chosen state.
type Userspace struct {
	Model *cpu.Model
	P     int
}

// Name implements CPUGovernor.
func (g Userspace) Name() string { return fmt.Sprintf("userspace(P%d)", g.P) }

// Decide implements CPUGovernor.
func (g Userspace) Decide(int, UtilSample) int { return g.P }

// utilToPState maps a utilisation to the slowest P-state whose frequency
// still covers util/upThreshold of the maximum frequency — the classic
// ondemand frequency ladder.
func utilToPState(m *cpu.Model, util, upThreshold float64) int {
	if util >= upThreshold {
		return 0
	}
	fmax := m.PStates[0].FreqGHz
	fmin := m.PStates[m.MaxP()].FreqGHz
	target := fmin + (util/upThreshold)*(fmax-fmin)
	// Pick the slowest state with frequency >= target.
	for p := m.MaxP(); p >= 0; p-- {
		if m.PStates[p].FreqGHz >= target {
			return p
		}
	}
	return 0
}

// Ondemand is the classic cpufreq ondemand governor: jump to P0 when
// busy utilisation exceeds the up-threshold (80%), otherwise scale
// frequency proportionally to utilisation (§2.2).
type Ondemand struct {
	Model *cpu.Model
	// UpThreshold defaults to 0.80 when zero.
	UpThreshold float64
}

// Name implements CPUGovernor.
func (Ondemand) Name() string { return "ondemand" }

func (g Ondemand) up() float64 {
	if g.UpThreshold == 0 {
		return 0.80
	}
	return g.UpThreshold
}

// Decide implements CPUGovernor.
func (g Ondemand) Decide(_ int, u UtilSample) int {
	return utilToPState(g.Model, u.Busy, g.up())
}

// Conservative steps the P-state gradually toward the load instead of
// jumping (§2.2: "gradually adjusts the next V/F state by transitioning
// to a value near the current V/F state").
type Conservative struct {
	Model *cpu.Model
	// UpThreshold / DownThreshold default to 0.80 / 0.20.
	UpThreshold, DownThreshold float64

	cur []int
}

// Name implements CPUGovernor.
func (*Conservative) Name() string { return "conservative" }

// Decide implements CPUGovernor.
func (g *Conservative) Decide(coreID int, u UtilSample) int {
	up, down := g.UpThreshold, g.DownThreshold
	if up == 0 {
		up = 0.80
	}
	if down == 0 {
		down = 0.20
	}
	if g.cur == nil {
		g.cur = make([]int, g.Model.NumCores)
		for i := range g.cur {
			g.cur[i] = g.Model.MaxP()
		}
	}
	c := g.cur[coreID]
	switch {
	case u.Busy > up && c > 0:
		c--
	case u.Busy < down && c < g.Model.MaxP():
		c++
	}
	g.cur[coreID] = c
	return c
}

// IntelPowersave models the intel_pstate driver's powersave governor: it
// derives utilisation from CC0 residency (so with C-states disabled it
// reads 100% and pegs P0 — the footnote behaviour in §6.2) and smooths
// it with an asymmetric EWMA — quick to shed frequency when load falls,
// slow to ramp when load rises (the busy-fraction setpoint controller's
// behaviour) — which is why it violates the SLO by larger factors than
// ondemand in Figs 12/14.
type IntelPowersave struct {
	Model *cpu.Model
	// AlphaUp is the EWMA weight of a sample above the current estimate
	// (defaults to 0.2); AlphaDown applies when the sample is below it
	// (defaults to 0.6).
	AlphaUp, AlphaDown float64
	// UpThreshold defaults to 0.80.
	UpThreshold float64

	ewma []float64
}

// Name implements CPUGovernor.
func (*IntelPowersave) Name() string { return "intel_powersave" }

// Decide implements CPUGovernor.
func (g *IntelPowersave) Decide(coreID int, u UtilSample) int {
	up := g.UpThreshold
	if up == 0 {
		up = 0.80
	}
	aUp, aDown := g.AlphaUp, g.AlphaDown
	if aUp == 0 {
		aUp = 0.2
	}
	if aDown == 0 {
		aDown = 0.6
	}
	if g.ewma == nil {
		g.ewma = make([]float64, g.Model.NumCores)
	}
	a := aUp
	if u.CC0 < g.ewma[coreID] {
		a = aDown
	}
	g.ewma[coreID] = (1-a)*g.ewma[coreID] + a*u.CC0
	return utilToPState(g.Model, g.ewma[coreID], up)
}
