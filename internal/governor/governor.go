// Package governor re-implements the Linux power-management policies the
// paper compares against: the cpufreq governors (performance, powersave,
// userspace, ondemand, conservative), the intel_pstate powersave governor
// (CC0-residency based), and the idle (C-state) governors menu, disable
// and c6only — plus the sampling Stack that runs a cpufreq governor
// periodically per core and that NMAP suspends/resumes per Algorithm 2.
package governor

import (
	"nmapsim/internal/cpu"
	"nmapsim/internal/sim"
)

// UtilSample is the per-core utilisation observed over one sampling
// window.
type UtilSample struct {
	// Busy is the fraction of the window the core spent executing.
	Busy float64
	// CC0 is the fraction of the window the core was in CC0 (awake),
	// which is what intel_pstate's powersave governor actually samples.
	CC0 float64
}

// CPUGovernor maps a utilisation sample to a desired P-state index for
// one core. Implementations may keep per-core history.
type CPUGovernor interface {
	Name() string
	Decide(coreID int, u UtilSample) int
}

// Stack runs a CPUGovernor on every core with a fixed sampling interval
// (10ms in the paper), applying the decisions through the processor's
// DVFS coordination. NMAP's Decision Engine suspends a core's entry
// while in Network Intensive Mode and resumes it on fallback.
type Stack struct {
	eng      *sim.Engine
	proc     *cpu.Processor
	gov      CPUGovernor
	interval sim.Duration

	suspended []bool
	offline   []bool
	prev      []cpu.Acct
	lastU     []UtilSample
	stop      func()
}

// NewStack builds the sampling stack. interval <= 0 defaults to 10ms.
func NewStack(eng *sim.Engine, proc *cpu.Processor, gov CPUGovernor, interval sim.Duration) *Stack {
	if interval <= 0 {
		interval = 10 * sim.Millisecond
	}
	return &Stack{
		eng:       eng,
		proc:      proc,
		gov:       gov,
		interval:  interval,
		suspended: make([]bool, len(proc.Cores)),
		offline:   make([]bool, len(proc.Cores)),
		prev:      make([]cpu.Acct, len(proc.Cores)),
		lastU:     make([]UtilSample, len(proc.Cores)),
	}
}

// Governor returns the wrapped cpufreq governor.
func (s *Stack) Governor() CPUGovernor { return s.gov }

// Interval returns the sampling interval.
func (s *Stack) Interval() sim.Duration { return s.interval }

// Start begins periodic sampling. The initial decision is issued
// immediately with zero utilisation so powersave-style governors settle
// at their floor right away.
func (s *Stack) Start() {
	for i, c := range s.proc.Cores {
		s.prev[i] = c.Snapshot()
		if !s.suspended[i] {
			s.proc.Request(i, s.gov.Decide(i, UtilSample{}))
		}
	}
	s.stop = s.eng.Ticker(s.interval, s.tick)
}

// Stop halts sampling.
func (s *Stack) Stop() {
	if s.stop != nil {
		s.stop()
		s.stop = nil
	}
}

func (s *Stack) tick() {
	for i := range s.proc.Cores {
		if s.offline[i] {
			continue // a dead core is neither sampled nor driven
		}
		u := s.sample(i)
		if s.suspended[i] {
			continue
		}
		s.proc.Request(i, s.gov.Decide(i, u))
	}
}

// sample computes the utilisation of core i since the previous tick and
// advances the per-core snapshot. Windows shorter than a quarter of the
// sampling interval are statistically meaningless (e.g. a Resume issued
// in the same instant as a tick), so the previous sample is reused.
func (s *Stack) sample(i int) UtilSample {
	cur := s.proc.Cores[i].Snapshot()
	prevAcct := s.prev[i]
	dt := float64(cur.At - prevAcct.At)
	if dt < float64(s.interval)/4 {
		return s.lastU[i]
	}
	s.prev[i] = cur
	u := UtilSample{
		Busy: float64(cur.BusyNs-prevAcct.BusyNs) / dt,
		CC0:  float64(cur.CC0Ns-prevAcct.CC0Ns) / dt,
	}
	s.lastU[i] = u
	return u
}

// Utilization exposes the most recent decision input for core i without
// advancing the snapshot (peeks at the live accumulators).
func (s *Stack) Utilization(i int) UtilSample {
	cur := s.proc.Cores[i].Snapshot()
	prevAcct := s.prev[i]
	dt := float64(cur.At - prevAcct.At)
	if dt <= 0 {
		return UtilSample{}
	}
	return UtilSample{
		Busy: float64(cur.BusyNs-prevAcct.BusyNs) / dt,
		CC0:  float64(cur.CC0Ns-prevAcct.CC0Ns) / dt,
	}
}

// Suspend disables the governor for core i (NMAP Network Intensive
// Mode: "disable ondemand governor").
func (s *Stack) Suspend(i int) { s.suspended[i] = true }

// Resume re-enables the governor for core i and immediately issues a
// decision from the utilisation accrued since the last tick (NMAP:
// "enforce P state based on CPU util; enable ondemand governor").
func (s *Stack) Resume(i int) {
	if !s.suspended[i] {
		return
	}
	s.suspended[i] = false
	u := s.sample(i)
	s.proc.Request(i, s.gov.Decide(i, u))
}

// Suspended reports whether core i's governor is suspended.
func (s *Stack) Suspended(i int) bool { return s.suspended[i] }

// CoreOffline stops the stack from sampling or driving core i (the
// core hard-failed). Its suspension state is preserved for recovery.
func (s *Stack) CoreOffline(i int) { s.offline[i] = true }

// CoreOnline resumes governing a recovered core: the utilisation
// snapshot restarts from the recovery instant (the offline window must
// not read as idleness) and, unless suspended, a decision is issued
// immediately.
func (s *Stack) CoreOnline(i int) {
	if !s.offline[i] {
		return
	}
	s.offline[i] = false
	s.refresh(i)
}

// CoreAdopted restarts core i's mode decision with fresh counters: the
// adoptive core just inherited a dead sibling's flows, so utilisation
// history from before the failover no longer predicts its load.
func (s *Stack) CoreAdopted(i int) {
	if s.offline[i] {
		return
	}
	s.refresh(i)
}

// refresh rebases core i's utilisation window to now and issues an
// immediate decision from a clean sample unless the core is suspended.
func (s *Stack) refresh(i int) {
	s.prev[i] = s.proc.Cores[i].Snapshot()
	s.lastU[i] = UtilSample{}
	if !s.suspended[i] {
		s.proc.Request(i, s.gov.Decide(i, UtilSample{}))
	}
}
