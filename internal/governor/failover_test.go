package governor

import (
	"testing"

	"nmapsim/internal/cpu"
	"nmapsim/internal/sim"
)

// countingGov records which cores the stack asks for decisions; the
// decision itself is a fixed intermediate state so applied requests are
// visible against the P0 reset default.
type countingGov struct{ decided []int }

func (g *countingGov) Name() string { return "counting" }
func (g *countingGov) Decide(core int, _ UtilSample) int {
	g.decided = append(g.decided, core)
	return 8
}

func newFailoverStack(t *testing.T) (*sim.Engine, *cpu.Processor, *Stack, *countingGov) {
	t.Helper()
	eng := sim.NewEngine()
	proc := cpu.NewProcessor(cpu.XeonGold6134, eng, sim.NewRNG(1))
	g := &countingGov{}
	st := NewStack(eng, proc, g, 10*sim.Millisecond)
	return eng, proc, st, g
}

func decisionsFor(g *countingGov, core int) int {
	n := 0
	for _, c := range g.decided {
		if c == core {
			n++
		}
	}
	return n
}

// A dead core is neither sampled nor driven: after CoreOffline the
// stack stops issuing decisions for it while the survivors keep their
// 10ms cadence.
func TestStackCoreOfflineStopsDriving(t *testing.T) {
	eng, proc, st, g := newFailoverStack(t)
	st.Start()
	eng.Run(sim.Time(25 * sim.Millisecond))
	before := decisionsFor(g, 1)
	if before == 0 {
		t.Fatal("warmup ticks issued no decisions for core 1")
	}
	proc.Offline(1)
	st.CoreOffline(1)
	eng.Run(sim.Time(120 * sim.Millisecond))
	if got := decisionsFor(g, 1); got != before {
		t.Fatalf("stack drove offline core 1: %d decisions, had %d at crash", got, before)
	}
	if got := decisionsFor(g, 0); got < before+6 {
		t.Fatalf("survivor core 0 lost its cadence: %d decisions after 120ms", got)
	}
}

// Recovery must not read the outage as idleness: CoreOnline rebases the
// utilisation window to the recovery instant and issues an immediate
// decision so the core rejoins DVFS without waiting out a stale sample.
func TestStackCoreOnlineRebasesAndDecides(t *testing.T) {
	eng, proc, st, g := newFailoverStack(t)
	st.Start()
	eng.Run(sim.Time(25 * sim.Millisecond))
	proc.Offline(1)
	st.CoreOffline(1)
	eng.Run(sim.Time(120 * sim.Millisecond))
	atCrash := decisionsFor(g, 1)
	proc.Online(1)
	st.CoreOnline(1)
	if got := decisionsFor(g, 1); got != atCrash+1 {
		t.Fatalf("CoreOnline issued %d immediate decisions, want exactly 1", got-atCrash)
	}
	// CoreOnline on a core that never went offline is a no-op.
	live := decisionsFor(g, 0)
	st.CoreOnline(0)
	if got := decisionsFor(g, 0); got != live {
		t.Fatalf("CoreOnline on a live core issued %d spurious decisions", got-live)
	}
	eng.Run(sim.Time(155 * sim.Millisecond))
	if got := decisionsFor(g, 1); got <= atCrash+1 {
		t.Fatal("recovered core 1 never rejoined the sampling cadence")
	}
}

// An adoptive core inherits a dead sibling's flows: CoreAdopted restarts
// its decision from fresh counters (pre-failover utilisation history no
// longer predicts its load), but never touches an offline or suspended
// core.
func TestStackCoreAdoptedRefreshesCounters(t *testing.T) {
	eng, _, st, g := newFailoverStack(t)
	st.Start()
	eng.Run(sim.Time(25 * sim.Millisecond))
	before := decisionsFor(g, 0)
	st.CoreAdopted(0)
	if got := decisionsFor(g, 0); got != before+1 {
		t.Fatalf("CoreAdopted issued %d decisions, want exactly 1", got-before)
	}
	u := st.Utilization(0)
	if u.Busy != 0 || u.CC0 != 0 {
		t.Fatalf("CoreAdopted did not rebase the utilisation window: %+v", u)
	}
	// Suspended (NMAP Network Intensive Mode) and offline cores are left
	// alone — adoption must not override either state machine.
	st.Suspend(0)
	mid := decisionsFor(g, 0)
	st.CoreAdopted(0)
	if got := decisionsFor(g, 0); got != mid {
		t.Fatal("CoreAdopted drove a suspended core")
	}
	st.CoreOffline(1)
	off := decisionsFor(g, 1)
	st.CoreAdopted(1)
	if got := decisionsFor(g, 1); got != off {
		t.Fatal("CoreAdopted drove an offline core")
	}
}
