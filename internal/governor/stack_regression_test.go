package governor

import (
	"testing"

	"nmapsim/internal/cpu"
	"nmapsim/internal/sim"
)

// Regression: a Resume issued at the same instant as (or just after) a
// stack tick sees a zero-length sampling window. The stack must reuse
// the last full-window utilisation instead of reading 0% and dropping a
// saturated core to Pmin mid-burst — the bug caused NMAP to flap P0→P15
// with 520µs re-transitions inside every burst.
func TestResumeRightAfterTickReusesLastUtil(t *testing.T) {
	eng := sim.NewEngine()
	proc := cpu.NewProcessor(cpu.XeonGold6134, eng, sim.NewRNG(1))
	st := NewStack(eng, proc, Ondemand{Model: cpu.XeonGold6134}, 10*sim.Millisecond)
	st.Start()
	st.Suspend(0)
	proc.Request(0, 0) // NMAP-style boost

	// Keep core 0 fully busy.
	var loop func()
	loop = func() {
		if eng.Now() < sim.Time(100*sim.Millisecond) {
			proc.Cores[0].StartExec(3200*500, loop)
		}
	}
	loop()

	// Resume exactly at a tick boundary: window length zero.
	eng.At(sim.Time(30*sim.Millisecond), func() {
		st.Resume(0)
		// The busy core must stay at (or be headed to) P0 — not P15.
		if p := proc.Cores[0].PendingPState(); p > 2 {
			t.Errorf("Resume at tick dropped a saturated core to P%d", p)
		}
	})
	eng.Run(sim.Time(100 * sim.Millisecond))
	if proc.Cores[0].PState() != 0 {
		t.Fatalf("busy core ended at P%d, want P0", proc.Cores[0].PState())
	}
}

// The complementary case: a Resume long after the last tick gets a real
// window and decides from it.
func TestResumeMidWindowSamplesFreshUtil(t *testing.T) {
	eng := sim.NewEngine()
	proc := cpu.NewProcessor(cpu.XeonGold6134, eng, sim.NewRNG(1))
	st := NewStack(eng, proc, Ondemand{Model: cpu.XeonGold6134}, 10*sim.Millisecond)
	st.Start()
	st.Suspend(0)
	proc.Request(0, 0)
	// Core 0 idle the whole time: resume mid-window must drop it.
	eng.At(sim.Time(35*sim.Millisecond), func() { st.Resume(0) })
	eng.Run(sim.Time(100 * sim.Millisecond))
	if proc.Cores[0].PState() != 15 {
		t.Fatalf("idle core ended at P%d after mid-window resume, want P15", proc.Cores[0].PState())
	}
}

// Utilization() must peek without advancing the sampling window.
func TestUtilizationPeekDoesNotAdvance(t *testing.T) {
	eng := sim.NewEngine()
	proc := cpu.NewProcessor(cpu.XeonGold6134, eng, sim.NewRNG(1))
	st := NewStack(eng, proc, Ondemand{Model: cpu.XeonGold6134}, 10*sim.Millisecond)
	st.Start()
	var loop func()
	loop = func() {
		if eng.Now() < sim.Time(9*sim.Millisecond) {
			proc.Cores[0].StartExec(3200*100, loop)
		}
	}
	loop()
	eng.Run(sim.Time(9 * sim.Millisecond))
	u1 := st.Utilization(0)
	u2 := st.Utilization(0)
	if u1.Busy == 0 {
		t.Fatal("peek saw no utilisation on a busy core")
	}
	if u2.Busy < u1.Busy*0.9 {
		t.Fatal("second peek diverged — the window advanced")
	}
}
