package governor

import (
	"testing"

	"nmapsim/internal/audit"
	"nmapsim/internal/cpu"
	"nmapsim/internal/faults"
	"nmapsim/internal/kernel"
	"nmapsim/internal/nic"
	"nmapsim/internal/sim"
	"nmapsim/internal/workload"
)

// Regression: a Resume issued at the same instant as (or just after) a
// stack tick sees a zero-length sampling window. The stack must reuse
// the last full-window utilisation instead of reading 0% and dropping a
// saturated core to Pmin mid-burst — the bug caused NMAP to flap P0→P15
// with 520µs re-transitions inside every burst.
func TestResumeRightAfterTickReusesLastUtil(t *testing.T) {
	eng := sim.NewEngine()
	proc := cpu.NewProcessor(cpu.XeonGold6134, eng, sim.NewRNG(1))
	st := NewStack(eng, proc, Ondemand{Model: cpu.XeonGold6134}, 10*sim.Millisecond)
	st.Start()
	st.Suspend(0)
	proc.Request(0, 0) // NMAP-style boost

	// Keep core 0 fully busy.
	var loop func()
	loop = func() {
		if eng.Now() < sim.Time(100*sim.Millisecond) {
			proc.Cores[0].StartExec(3200*500, loop)
		}
	}
	loop()

	// Resume exactly at a tick boundary: window length zero.
	eng.At(sim.Time(30*sim.Millisecond), func() {
		st.Resume(0)
		// The busy core must stay at (or be headed to) P0 — not P15.
		if p := proc.Cores[0].PendingPState(); p > 2 {
			t.Errorf("Resume at tick dropped a saturated core to P%d", p)
		}
	})
	eng.Run(sim.Time(100 * sim.Millisecond))
	if proc.Cores[0].PState() != 0 {
		t.Fatalf("busy core ended at P%d, want P0", proc.Cores[0].PState())
	}
}

// The complementary case: a Resume long after the last tick gets a real
// window and decides from it.
func TestResumeMidWindowSamplesFreshUtil(t *testing.T) {
	eng := sim.NewEngine()
	proc := cpu.NewProcessor(cpu.XeonGold6134, eng, sim.NewRNG(1))
	st := NewStack(eng, proc, Ondemand{Model: cpu.XeonGold6134}, 10*sim.Millisecond)
	st.Start()
	st.Suspend(0)
	proc.Request(0, 0)
	// Core 0 idle the whole time: resume mid-window must drop it.
	eng.At(sim.Time(35*sim.Millisecond), func() { st.Resume(0) })
	eng.Run(sim.Time(100 * sim.Millisecond))
	if proc.Cores[0].PState() != 15 {
		t.Fatalf("idle core ended at P%d after mid-window resume, want P15", proc.Cores[0].PState())
	}
}

// Utilization() must peek without advancing the sampling window.
func TestUtilizationPeekDoesNotAdvance(t *testing.T) {
	eng := sim.NewEngine()
	proc := cpu.NewProcessor(cpu.XeonGold6134, eng, sim.NewRNG(1))
	st := NewStack(eng, proc, Ondemand{Model: cpu.XeonGold6134}, 10*sim.Millisecond)
	st.Start()
	var loop func()
	loop = func() {
		if eng.Now() < sim.Time(9*sim.Millisecond) {
			proc.Cores[0].StartExec(3200*100, loop)
		}
	}
	loop()
	eng.Run(sim.Time(9 * sim.Millisecond))
	u1 := st.Utilization(0)
	u2 := st.Utilization(0)
	if u1.Busy == 0 {
		t.Fatal("peek saw no utilisation on a busy core")
	}
	if u2.Busy < u1.Busy*0.9 {
		t.Fatal("second peek diverged — the window advanced")
	}
}

// A full governor stack over sleeping cores under interrupt loss: cores
// drop to CC6 between packet waves, some wake-up interrupts are lost in
// delivery (the ring keeps the packets; a later interrupt drains them),
// and the whole run must stay legal under the invariant auditor — no
// wake from a state never entered, C-state residencies summing to the
// clock, every packet conserved. Regression scope: the kernel's
// sleeping/waking handshake used to be easy to break precisely when an
// expected interrupt never arrived.
func TestStackLegalUnderLostIRQsWithCC6(t *testing.T) {
	m := cpu.XeonGold6134
	eng := sim.NewEngine()
	proc := cpu.NewProcessor(m, eng, sim.NewRNG(2))
	aud := audit.New(eng, m.NumCores, m.MaxP(), m.MaxPowerW())
	proc.SetAuditor(aud)
	dev := nic.New(nic.DefaultConfig(m.NumCores), eng, 7)
	dev.SetAuditor(aud)
	inj := faults.New(faults.Config{IRQLossProb: 0.35}, sim.NewRNG(9))
	dev.SetInjector(inj)

	var completed uint64
	kernels := make([]*kernel.CoreKernel, 0, m.NumCores)
	for i, c := range proc.Cores {
		k := kernel.NewCoreKernel(i, eng, c, dev, kernel.Config{}, C6Only{})
		k.AppCycles = func(*workload.Request) float64 { return 3200 * 2 }
		k.SetAuditor(aud)
		k.OnAppComplete = func(r *workload.Request) {
			// Close the audited loop the way the server does: transmit
			// one response segment and count its arrival.
			p := dev.GetPacket()
			p.ID, p.Flow, p.Payload = r.ID, r.Flow, r
			dev.Transmit(dev.QueueFor(r.Flow), p, 1, func(p *nic.Packet) {
				aud.TxDone()
				aud.RespSched()
				aud.RespArrived()
				dev.PutPacket(p)
				completed++
			})
		}
		kernels = append(kernels, k)
		k.Start()
	}
	st := NewStack(eng, proc, Ondemand{Model: m}, 10*sim.Millisecond)
	st.Start()

	// Five widely spaced waves: every gap is long enough for the menu-free
	// c6only policy to drop each core into CC6 before the next wave's
	// interrupts (possibly lost) arrive.
	var issued uint64
	for wave := 0; wave < 5; wave++ {
		at := sim.Time(wave) * sim.Time(5*sim.Millisecond)
		eng.At(at, func() {
			for i := 0; i < 64; i++ {
				aud.ClientSend()
				p := dev.GetPacket()
				p.ID, p.Flow = issued, issued
				p.Payload = &workload.Request{ID: issued, Flow: issued, AppCycles: 3200 * 2}
				issued++
				dev.Deliver(p)
			}
		})
	}
	eng.Run(sim.Time(100 * sim.Millisecond))

	if inj.Stats().IRQsLost == 0 {
		t.Fatal("no interrupts were lost; the scenario is vacuous")
	}
	if proc.TotalCC6Entries() == 0 {
		t.Fatal("no core ever reached CC6; the scenario is vacuous")
	}
	final := audit.Final{
		Issued:         issued,
		Completed:      completed,
		InFlight:       issued - completed, // stranded copies are still live
		PackageEnergyJ: proc.PackageEnergyJ(),
		FaultWireDrops: inj.Stats().WireDrops,
		NICDrops:       dev.TotalDrops(),
	}
	for q := 0; q < m.NumCores; q++ {
		final.RingResidual += uint64(dev.QueueLen(q))
		final.TxPendingResidual += uint64(dev.TxPending(q))
	}
	for _, k := range kernels {
		c := k.Counters()
		final.KernelCompleted += c.Completed
		final.KernelSockDrops += c.SockDrops
		final.SockQResidual += uint64(k.SockQLen())
		final.AppResidual += uint64(k.AppInFlight())
		final.PollResidual += uint64(k.PollInFlight())
	}
	for _, c := range proc.Cores {
		a := c.Snapshot()
		final.CoreBusyNs = append(final.CoreBusyNs, a.BusyNs)
		final.CoreCC0Ns = append(final.CoreCC0Ns, a.CC0Ns)
		final.CoreCC6 = append(final.CoreCC6, a.CC6Entries)
		final.CoreTrans = append(final.CoreTrans, c.Transitions())
		final.CoreEnergyJ = append(final.CoreEnergyJ, a.EnergyJ)
	}
	// A wave whose final interrupts are all lost legitimately strands its
	// packets in the ring (nothing re-raises the IRQ until a later
	// arrival) — they must show up as ring residual, never vanish.
	residual := final.RingResidual + final.SockQResidual + final.AppResidual + final.PollResidual
	if completed+residual != issued {
		t.Fatalf("conservation broken: completed %d + residual %d != issued %d", completed, residual, issued)
	}
	if completed < issued/2 {
		t.Fatalf("only %d of %d packets completed; lost IRQs starved the datapath", completed, issued)
	}
	if rep := aud.Finalize(final); rep.Failed() {
		t.Fatalf("lost IRQs over CC6 sleeps broke invariants:\n%s", rep)
	}
}
