package governor

import (
	"nmapsim/internal/cpu"
)

// Schedutil models the modern Linux default governor (not part of the
// paper's comparison, provided as an extension): it maps utilisation to
// frequency with the kernel's 1.25 headroom formula
//
//	f_target = 1.25 · f_max · util
//
// and applies a rate limit — downward moves are held off until the
// utilisation has been below the current level for HoldTicks samples,
// which suppresses the flapping ondemand shows around the threshold.
type Schedutil struct {
	Model *cpu.Model
	// Headroom defaults to 1.25 (the kernel's C constant).
	Headroom float64
	// HoldTicks is the number of consecutive samples a lower target
	// must persist before the frequency drops (default 2).
	HoldTicks int

	cur  []int
	hold []int
}

// Name implements CPUGovernor.
func (*Schedutil) Name() string { return "schedutil" }

// Decide implements CPUGovernor.
func (g *Schedutil) Decide(coreID int, u UtilSample) int {
	headroom := g.Headroom
	if headroom == 0 {
		headroom = 1.25
	}
	holdN := g.HoldTicks
	if holdN == 0 {
		holdN = 2
	}
	if g.cur == nil {
		g.cur = make([]int, g.Model.NumCores)
		g.hold = make([]int, g.Model.NumCores)
		for i := range g.cur {
			g.cur[i] = g.Model.MaxP()
		}
	}
	fmax := g.Model.PStates[0].FreqGHz
	target := headroom * fmax * u.Busy
	// Slowest state whose frequency covers the target.
	next := 0
	for p := g.Model.MaxP(); p >= 0; p-- {
		if g.Model.PStates[p].FreqGHz >= target {
			next = p
			break
		}
	}
	switch {
	case next < g.cur[coreID]:
		// Upward (faster): apply immediately.
		g.cur[coreID] = next
		g.hold[coreID] = 0
	case next > g.cur[coreID]:
		// Downward: require persistence.
		g.hold[coreID]++
		if g.hold[coreID] >= holdN {
			g.cur[coreID] = next
			g.hold[coreID] = 0
		}
	default:
		g.hold[coreID] = 0
	}
	return g.cur[coreID]
}
