package governor

import (
	"nmapsim/internal/cpu"
	"nmapsim/internal/sim"
)

// Disable is the "disable" idle policy of §5.2: the core never leaves
// CC0 (poll idle). intel_powersave consequently reads 100% CC0
// residency and pegs P0.
type Disable struct{}

// Name implements kernel.IdlePolicy.
func (Disable) Name() string { return "disable" }

// SelectState implements kernel.IdlePolicy.
func (Disable) SelectState(int) cpu.CState { return cpu.CC0 }

// IdleEnded implements kernel.IdlePolicy.
func (Disable) IdleEnded(int, sim.Duration) {}

// C6Only is the "c6only" policy of §5.2: every idle period goes straight
// to the deepest state.
type C6Only struct{}

// Name implements kernel.IdlePolicy.
func (C6Only) Name() string { return "c6only" }

// SelectState implements kernel.IdlePolicy.
func (C6Only) SelectState(int) cpu.CState { return cpu.CC6 }

// IdleEnded implements kernel.IdlePolicy.
func (C6Only) IdleEnded(int, sim.Duration) {}

// Menu models the Linux menu governor (§2.2): it predicts the next idle
// interval from the recent idle history of each core and picks the
// deepest C-state whose break-even residency the prediction covers.
type Menu struct {
	// CC6Breakeven is the minimum predicted idle interval that makes
	// CC6 worthwhile (wake latency + flush penalty amortisation);
	// defaults to 200µs.
	CC6Breakeven sim.Duration
	// CC1Breakeven defaults to 2µs.
	CC1Breakeven sim.Duration

	hist map[int]*menuHist
}

const menuHistLen = 8

type menuHist struct {
	vals [menuHistLen]sim.Duration
	n    int
	idx  int
}

func (h *menuHist) add(d sim.Duration) {
	h.vals[h.idx] = d
	h.idx = (h.idx + 1) % menuHistLen
	if h.n < menuHistLen {
		h.n++
	}
}

// predict returns a conservative estimate of the next idle interval: the
// mean of the recent history, shrunk toward the minimum to avoid
// over-deep sleeps after a burst of short idles (the menu governor's
// "typical interval" heuristic).
func (h *menuHist) predict() sim.Duration {
	if h.n == 0 {
		return 0
	}
	var sum sim.Duration
	min := h.vals[0]
	for i := 0; i < h.n; i++ {
		sum += h.vals[i]
		if h.vals[i] < min {
			min = h.vals[i]
		}
	}
	mean := sum / sim.Duration(h.n)
	return (mean + min) / 2
}

// Name implements kernel.IdlePolicy.
func (*Menu) Name() string { return "menu" }

// SelectState implements kernel.IdlePolicy.
func (m *Menu) SelectState(coreID int) cpu.CState {
	cc6 := m.CC6Breakeven
	if cc6 == 0 {
		cc6 = 200 * sim.Microsecond
	}
	cc1 := m.CC1Breakeven
	if cc1 == 0 {
		cc1 = 2 * sim.Microsecond
	}
	if m.hist == nil {
		m.hist = make(map[int]*menuHist)
	}
	h := m.hist[coreID]
	if h == nil {
		h = &menuHist{}
		m.hist[coreID] = h
	}
	p := h.predict()
	switch {
	case h.n == 0:
		// No history yet: be shallow.
		return cpu.CC1
	case p >= cc6:
		return cpu.CC6
	case p >= cc1:
		return cpu.CC1
	default:
		return cpu.CC0
	}
}

// IdleEnded implements kernel.IdlePolicy.
func (m *Menu) IdleEnded(coreID int, d sim.Duration) {
	if m.hist == nil {
		m.hist = make(map[int]*menuHist)
	}
	h := m.hist[coreID]
	if h == nil {
		h = &menuHist{}
		m.hist[coreID] = h
	}
	h.add(d)
}

// NewIdlePolicy returns the idle policy with the given name: "menu",
// "disable" or "c6only".
func NewIdlePolicy(name string) (interface {
	Name() string
	SelectState(int) cpu.CState
	IdleEnded(int, sim.Duration)
}, bool) {
	switch name {
	case "menu":
		return &Menu{}, true
	case "disable":
		return Disable{}, true
	case "c6only":
		return C6Only{}, true
	}
	return nil, false
}
