package governor

import (
	"testing"
	"testing/quick"

	"nmapsim/internal/cpu"
	"nmapsim/internal/sim"
)

func TestPerformanceAlwaysP0(t *testing.T) {
	g := Performance{}
	if g.Decide(0, UtilSample{Busy: 0}) != 0 || g.Decide(3, UtilSample{Busy: 1}) != 0 {
		t.Fatal("performance must always pick P0")
	}
}

func TestPowersaveAlwaysPmin(t *testing.T) {
	g := Powersave{Model: cpu.XeonGold6134}
	if g.Decide(0, UtilSample{Busy: 1}) != 15 {
		t.Fatal("powersave must always pick Pmin")
	}
}

func TestUserspaceFixed(t *testing.T) {
	g := Userspace{Model: cpu.XeonGold6134, P: 7}
	if g.Decide(0, UtilSample{Busy: 0.9}) != 7 {
		t.Fatal("userspace must hold the configured state")
	}
}

func TestOndemandJumpsToP0AboveThreshold(t *testing.T) {
	g := Ondemand{Model: cpu.XeonGold6134}
	if p := g.Decide(0, UtilSample{Busy: 0.85}); p != 0 {
		t.Fatalf("ondemand at 85%% util → P%d, want P0", p)
	}
	if p := g.Decide(0, UtilSample{Busy: 0.0}); p != 15 {
		t.Fatalf("ondemand at 0%% util → P%d, want P15", p)
	}
}

func TestOndemandProportionalBelowThreshold(t *testing.T) {
	g := Ondemand{Model: cpu.XeonGold6134}
	p50 := g.Decide(0, UtilSample{Busy: 0.50})
	if p50 <= 0 || p50 >= 15 {
		t.Fatalf("ondemand at 50%% util → P%d, want intermediate", p50)
	}
	p20 := g.Decide(0, UtilSample{Busy: 0.20})
	if p20 <= p50 {
		t.Fatalf("lower util must map to slower state: P%d !> P%d", p20, p50)
	}
}

// Property: ondemand's decision is monotone in utilisation and the
// chosen frequency covers the target.
func TestOndemandMonotoneProperty(t *testing.T) {
	g := Ondemand{Model: cpu.XeonGold6134}
	f := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw) / 255
		b := float64(bRaw) / 255
		if a > b {
			a, b = b, a
		}
		pa := g.Decide(0, UtilSample{Busy: a})
		pb := g.Decide(0, UtilSample{Busy: b})
		return pa >= pb // higher util → faster (lower index)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestConservativeStepsGradually(t *testing.T) {
	g := &Conservative{Model: cpu.XeonGold6134}
	p := g.Decide(0, UtilSample{Busy: 1.0})
	if p != 14 {
		t.Fatalf("conservative first step → P%d, want P14 (one step from P15)", p)
	}
	for i := 0; i < 20; i++ {
		p = g.Decide(0, UtilSample{Busy: 1.0})
	}
	if p != 0 {
		t.Fatalf("conservative under sustained load → P%d, want P0", p)
	}
	p = g.Decide(0, UtilSample{Busy: 0.0})
	if p != 1 {
		t.Fatalf("conservative step-down → P%d, want P1", p)
	}
}

func TestConservativePerCoreState(t *testing.T) {
	g := &Conservative{Model: cpu.XeonGold6134}
	g.Decide(0, UtilSample{Busy: 1.0})
	g.Decide(0, UtilSample{Busy: 1.0})
	p1 := g.Decide(1, UtilSample{Busy: 1.0})
	if p1 != 14 {
		t.Fatalf("core 1 first step → P%d, want P14 (independent state)", p1)
	}
}

func TestIntelPowersaveUsesCC0Residency(t *testing.T) {
	g := &IntelPowersave{Model: cpu.XeonGold6134}
	// Busy is low but the core never sleeps (disable policy): CC0 = 1.0.
	var p int
	for i := 0; i < 40; i++ {
		p = g.Decide(0, UtilSample{Busy: 0.05, CC0: 1.0})
	}
	if p != 0 {
		t.Fatalf("intel_powersave with CC0=100%% → P%d, want P0 (paper footnote)", p)
	}
}

func TestIntelPowersaveReactsSlowerThanOndemand(t *testing.T) {
	ip := &IntelPowersave{Model: cpu.XeonGold6134}
	od := Ondemand{Model: cpu.XeonGold6134}
	// One high-util sample after a long quiet phase.
	for i := 0; i < 10; i++ {
		ip.Decide(0, UtilSample{Busy: 0, CC0: 0})
	}
	pIP := ip.Decide(0, UtilSample{Busy: 1.0, CC0: 1.0})
	pOD := od.Decide(0, UtilSample{Busy: 1.0})
	if pOD != 0 {
		t.Fatalf("ondemand must jump instantly, got P%d", pOD)
	}
	if pIP == 0 {
		t.Fatal("intel_powersave jumped instantly; EWMA smoothing missing")
	}
}

func TestStackSamplesAndApplies(t *testing.T) {
	eng := sim.NewEngine()
	proc := cpu.NewProcessor(cpu.XeonGold6134, eng, sim.NewRNG(1))
	st := NewStack(eng, proc, Ondemand{Model: cpu.XeonGold6134}, 10*sim.Millisecond)
	st.Start()
	// Keep core 0 busy continuously.
	var loop func()
	loop = func() {
		if eng.Now() < sim.Time(50*sim.Millisecond) {
			proc.Cores[0].StartExec(3200*100, loop)
		}
	}
	loop()
	eng.Run(sim.Time(50 * sim.Millisecond))
	if proc.Cores[0].PState() != 0 {
		t.Fatalf("busy core at P%d under ondemand, want P0", proc.Cores[0].PState())
	}
	if proc.Cores[1].PState() != 15 {
		t.Fatalf("idle core at P%d under ondemand, want P15", proc.Cores[1].PState())
	}
}

func TestStackSuspendResume(t *testing.T) {
	eng := sim.NewEngine()
	proc := cpu.NewProcessor(cpu.XeonGold6134, eng, sim.NewRNG(1))
	st := NewStack(eng, proc, Ondemand{Model: cpu.XeonGold6134}, 10*sim.Millisecond)
	st.Start()
	st.Suspend(0)
	proc.Request(0, 0) // NMAP boosts
	eng.Run(sim.Time(50 * sim.Millisecond))
	if proc.Cores[0].PState() != 0 {
		t.Fatalf("suspended core at P%d, want NMAP's P0 to stick", proc.Cores[0].PState())
	}
	if !st.Suspended(0) {
		t.Fatal("Suspended(0) = false")
	}
	st.Resume(0) // idle core: governor should drop it back down
	eng.Run(sim.Time(100 * sim.Millisecond))
	if proc.Cores[0].PState() != 15 {
		t.Fatalf("resumed idle core at P%d, want P15", proc.Cores[0].PState())
	}
}

func TestStackResumeIdempotent(t *testing.T) {
	eng := sim.NewEngine()
	proc := cpu.NewProcessor(cpu.XeonGold6134, eng, sim.NewRNG(1))
	st := NewStack(eng, proc, Performance{}, 0)
	st.Resume(0) // resume without suspend must be a no-op
	if st.Suspended(0) {
		t.Fatal("core suspended after spurious resume")
	}
}

func TestMenuDeepensWithLongIdleHistory(t *testing.T) {
	m := &Menu{}
	// First idle with no history: shallow.
	if s := m.SelectState(0); s != cpu.CC1 {
		t.Fatalf("menu with no history → %v, want CC1", s)
	}
	for i := 0; i < 8; i++ {
		m.IdleEnded(0, 5*sim.Millisecond)
	}
	if s := m.SelectState(0); s != cpu.CC6 {
		t.Fatalf("menu with long-idle history → %v, want CC6", s)
	}
	for i := 0; i < 8; i++ {
		m.IdleEnded(0, 5*sim.Microsecond)
	}
	if s := m.SelectState(0); s == cpu.CC6 {
		t.Fatal("menu chose CC6 despite short-idle history")
	}
}

func TestMenuPerCoreHistory(t *testing.T) {
	m := &Menu{}
	for i := 0; i < 8; i++ {
		m.IdleEnded(0, 10*sim.Millisecond)
	}
	if s := m.SelectState(1); s == cpu.CC6 {
		t.Fatal("core 1 inherited core 0's history")
	}
}

func TestIdlePolicyRegistry(t *testing.T) {
	for _, name := range []string{"menu", "disable", "c6only"} {
		p, ok := NewIdlePolicy(name)
		if !ok || p.Name() != name {
			t.Fatalf("NewIdlePolicy(%q) broken", name)
		}
	}
	if _, ok := NewIdlePolicy("nope"); ok {
		t.Fatal("unknown policy accepted")
	}
}

func TestDisableAndC6OnlyPolicies(t *testing.T) {
	if (Disable{}).SelectState(0) != cpu.CC0 {
		t.Fatal("disable must poll-idle in CC0")
	}
	if (C6Only{}).SelectState(0) != cpu.CC6 {
		t.Fatal("c6only must always pick CC6")
	}
}

func TestUtilToPStateCoversTarget(t *testing.T) {
	m := cpu.XeonGold6134
	for u := 0.0; u <= 1.0; u += 0.01 {
		p := utilToPState(m, u, 0.8)
		if u < 0.8 {
			fmin := m.PStates[m.MaxP()].FreqGHz
			fmax := m.PStates[0].FreqGHz
			target := fmin + (u/0.8)*(fmax-fmin)
			if m.PStates[p].FreqGHz < target-1e-9 {
				t.Fatalf("util %.2f → P%d (%.3fGHz) below target %.3fGHz",
					u, p, m.PStates[p].FreqGHz, target)
			}
		} else if p != 0 {
			t.Fatalf("util %.2f above threshold → P%d, want P0", u, p)
		}
	}
}
