package nmapsim_test

import (
	"fmt"

	"nmapsim"
)

// The minimal NMAP run: bursty memcached at the paper's high load on
// the simulated Xeon Gold 6134, NMAP governor, menu idle policy.
func ExampleScenario_Run() {
	res, err := nmapsim.Scenario{
		App:        "memcached",
		Policy:     "nmap",
		Load:       "high",
		Seed:       42,
		WarmupMs:   100,
		DurationMs: 300,
	}.Run()
	if err != nil {
		panic(err)
	}
	fmt.Printf("SLO %.0fms violated: %v\n", res.SLOMs, res.Violated)
	// Output: SLO 1ms violated: false
}

// Comparing policies on one configuration: the headline result is that
// NMAP keeps the SLO that ondemand misses, at far less energy than the
// performance governor.
func ExampleCompare() {
	out, err := nmapsim.Compare(
		nmapsim.Scenario{App: "memcached", Load: "high", Seed: 42, WarmupMs: 100, DurationMs: 300},
		"ondemand", "performance", "nmap")
	if err != nil {
		panic(err)
	}
	fmt.Printf("ondemand violated: %v\n", out["ondemand"].Violated)
	fmt.Printf("nmap violated: %v\n", out["nmap"].Violated)
	fmt.Printf("nmap cheaper than performance: %v\n",
		out["nmap"].EnergyJ < out["performance"].EnergyJ)
	// Output:
	// ondemand violated: true
	// nmap violated: false
	// nmap cheaper than performance: true
}

// The §4.2 offline profiling step, exposed directly.
func ExampleProfileThresholds() {
	th, err := nmapsim.ProfileThresholds("memcached", 1001)
	if err != nil {
		panic(err)
	}
	fmt.Printf("thresholds positive: %v\n", th.NITh > 0 && th.CUTh > 0)
	// Output: thresholds positive: true
}
